// Randomized differential harness over the three broadcast engines.
//
// ~200 seeded random topologies spanning every scenario regime the sweep
// axes can produce — uniform (geo) and exponential-ish (euclidean) latency
// substrates, heterogeneous bandwidth/validation tiers, geographically
// clustered networks, adversarial withholding, churn-mutated graphs, infra
// overlays, disconnected fragments — each asserting that
//
//      legacy Topology walk  ≡  single-source CSR  ≡  batched engine
//
// byte-for-byte on the arrival AND ready vectors (memcmp of the doubles, so
// even a one-ulp divergence or a -0.0 fails). The legacy engine is the
// oracle; the batched engine additionally runs both its bucket-queue fast
// path and (where the graph forces it) the heap fallback, and once more
// through a ThreadPool to pin the any-worker-count determinism contract.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "metrics/eval.hpp"
#include "net/csr.hpp"
#include "runner/thread_pool.hpp"
#include "scenario/driver.hpp"
#include "scenario/scenario.hpp"
#include "sim/batch.hpp"
#include "sim/broadcast.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

::testing::AssertionResult bytes_equal(std::span<const double> a,
                                       std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "first mismatch at index " << i << ": " << a[i] << " vs "
             << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// One differential case: all three engines from a spread of miners, batched
// engine both inline and across a 3-worker pool.
void expect_three_engine_parity(const net::Topology& topology,
                                const net::Network& network,
                                const char* regime, std::uint64_t seed) {
  SCOPED_TRACE(::testing::Message() << "regime=" << regime
                                    << " seed=" << seed);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);

  // Miners: a handful spread over the id range (every node would be O(n^2)
  // per case; the λ-parity test below still covers all-sources batches).
  std::vector<net::NodeId> miners;
  const auto n = static_cast<net::NodeId>(topology.size());
  for (net::NodeId m = 0; m < n; m += std::max<net::NodeId>(1, n / 5)) {
    miners.push_back(m);
  }

  sim::MultiSourceScratch scratch;
  sim::MultiSourceResult batched;
  sim::simulate_broadcast_batch(csr, miners, scratch, batched);

  sim::MultiSourceResult pooled;
  {
    runner::ThreadPool pool(3);
    sim::simulate_broadcast_batch(csr, miners, scratch, pooled, &pool);
  }

  sim::BroadcastScratch csr_scratch;
  sim::BroadcastResult via_csr;
  for (std::size_t s = 0; s < miners.size(); ++s) {
    const sim::BroadcastResult legacy =
        sim::simulate_broadcast(topology, network, miners[s]);
    sim::simulate_broadcast(csr, miners[s], csr_scratch, via_csr);
    SCOPED_TRACE(::testing::Message() << "miner=" << miners[s]);
    EXPECT_TRUE(bytes_equal(via_csr.arrival, legacy.arrival));
    EXPECT_TRUE(bytes_equal(via_csr.ready, legacy.ready));
    EXPECT_TRUE(bytes_equal(batched.arrival_of(s), legacy.arrival));
    EXPECT_TRUE(bytes_equal(batched.ready_of(s), legacy.ready));
    EXPECT_TRUE(bytes_equal(pooled.arrival_of(s), batched.arrival_of(s)));
    EXPECT_TRUE(bytes_equal(pooled.ready_of(s), batched.ready_of(s)));
  }
}

net::Topology random_topology(std::size_t n, std::uint64_t seed) {
  net::Topology topology(n);
  util::Rng rng(seed);
  topo::build_random(topology, rng);
  return topology;
}

// 40 seeds x 5 regime families = 200 random topologies.
constexpr std::uint64_t kSeeds = 40;

TEST(EngineDiff, UniformGeoSubstrate) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 40 + 7 * (seed % 11);
    options.seed = seed;
    const auto network = net::Network::build(options);
    const auto topology = random_topology(options.n, seed);
    expect_three_engine_parity(topology, network, "uniform-geo", seed);
  }
}

TEST(EngineDiff, ExponentialEuclideanSubstrate) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 40 + 5 * (seed % 13);
    options.seed = seed * 31;
    // Euclidean embedding: near-colocated pairs produce the tiny edge
    // delays that stress the bucket width derivation; the validation draw
    // spread plays the role of the exponential tail.
    options.latency = net::NetworkOptions::LatencyKind::Euclidean;
    options.validation_scale = seed % 3 == 0 ? 5.0 : 0.5;
    const auto network = net::Network::build(options);
    const auto topology = random_topology(options.n, seed * 31);
    expect_three_engine_parity(topology, network, "exponential-euclidean",
                               seed);
  }
}

TEST(EngineDiff, ClusteredAndHeterogeneousScenarios) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    scenario::ScenarioSpec spec;
    spec.geo.concentration = 0.5;
    spec.hetero.profile = seed % 2 == 0 ? scenario::HeteroProfile::Bandwidth
                                        : scenario::HeteroProfile::Datacenter;
    net::NetworkOptions options;
    options.n = 40 + 9 * (seed % 7);
    options.seed = seed * 101;
    scenario::adjust_network_options(options, spec);
    auto network = net::Network::build(options);
    scenario::apply_static_regimes(network, spec, seed * 101);
    const auto topology = random_topology(options.n, seed * 101);
    expect_three_engine_parity(topology, network, "clustered-hetero", seed);
  }
}

TEST(EngineDiff, WithholdingAdversaries) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    scenario::ScenarioSpec spec;
    spec.adversary.withhold_fraction = 0.25;
    net::NetworkOptions options;
    options.n = 40 + 6 * (seed % 9);
    options.seed = seed * 7;
    auto network = net::Network::build(options);
    scenario::apply_static_regimes(network, spec, seed * 7);
    const auto topology = random_topology(options.n, seed * 7);
    expect_three_engine_parity(topology, network, "withholding", seed);
  }
}

TEST(EngineDiff, ChurnMutatedTopologies) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    net::NetworkOptions options;
    options.n = 50 + 4 * (seed % 8);
    options.seed = seed * 13;
    auto network = net::Network::build(options);
    auto topology = random_topology(options.n, seed * 13);
    scenario::ChurnRegime regime;
    regime.rate = 0.1;
    regime.start_round = 0;
    regime.downtime_rounds = seed % 2 == 0 ? 0 : 2;
    scenario::ChurnDriver driver(regime, topology, network, seed * 13);
    for (std::size_t round = 0; round < 4; ++round) {
      driver.before_round(round);
    }
    expect_three_engine_parity(topology, network, "churn-mutated", seed);
  }
}

// Degenerate graphs: the shapes most likely to break an engine swap.
TEST(EngineDiff, EdgeCases) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 5;
  const auto network = net::Network::build(options);

  // Zero-latency infra edge: min edge delay 0 forces the heap fallback.
  {
    auto topology = random_topology(60, 5);
    // First pair not already wired by the random build.
    net::NodeId other = 1;
    while (!topology.add_infra_edge(0, other, 0.0)) ++other;
    const auto csr = net::CsrTopology::build(topology, network);
    EXPECT_EQ(csr.min_delay_ms(), 0.0);
    expect_three_engine_parity(topology, network, "zero-infra", 5);
  }
  // Sub-propagation infra overlay (the relay-tree shape). Some spokes may
  // already be p2p-adjacent to the hub; enough must attach to matter.
  {
    auto topology = random_topology(60, 5);
    int added = 0;
    for (net::NodeId v = 5; v < 50; v += 9) {
      if (topology.add_infra_edge(1, v, 0.25)) ++added;
    }
    ASSERT_GE(added, 2);
    expect_three_engine_parity(topology, network, "fast-infra", 5);
  }
  // Disconnected fragments: isolated nodes must stay +inf in all engines.
  {
    auto topology = random_topology(60, 5);
    for (net::NodeId v = 52; v < 60; ++v) topology.disconnect_all(v);
    expect_three_engine_parity(topology, network, "disconnected", 5);
  }
  // Edgeless graph: every engine degenerates to "miner only".
  {
    net::Topology topology(60);
    expect_three_engine_parity(topology, network, "edgeless", 5);
  }
}

// λ parity through the metrics batch entry point: the all-sources
// evaluation (batched, inline and pooled) must equal the per-source
// lambda_for_broadcast oracle bit for bit.
TEST(EngineDiff, EvalAllSourcesMatchesPerSourceOracleAtAnyWorkerCount) {
  for (std::uint64_t seed : {3u, 11u, 27u}) {
    net::NetworkOptions options;
    options.n = 80;
    options.seed = seed;
    const auto network = net::Network::build(options);
    const auto topology = random_topology(options.n, seed);
    const auto csr = net::CsrTopology::build(topology, network);

    std::vector<double> oracle(network.size());
    for (net::NodeId v = 0; v < network.size(); ++v) {
      const auto result = sim::simulate_broadcast(topology, network, v);
      oracle[v] = metrics::lambda_for_broadcast(result, network, 0.90);
    }

    const auto inline_eval = metrics::eval_all_sources(csr, network, 0.90);
    EXPECT_TRUE(bytes_equal(inline_eval, oracle));

    sim::MultiSourceScratch scratch;
    runner::ThreadPool pool(3);
    const auto pooled_eval =
        metrics::eval_all_sources(csr, network, 0.90, &scratch, &pool);
    EXPECT_TRUE(bytes_equal(pooled_eval, oracle));
  }
}

}  // namespace
}  // namespace perigee
