// End-to-end parity between the fast analytic engine and the message-level
// gossip engine as *learning substrates*: Perigee trained on INV timestamps
// must reach conclusions equivalent to Perigee trained on the fast engine's
// delivery times.
#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hpp"
#include "sim/gossip.hpp"
#include "sim/rounds.hpp"
#include "topo/builders.hpp"
#include "util/stats.hpp"

namespace perigee {
namespace {

TEST(EngineParity, GossipObservationsAreNormalizedPerBlock) {
  net::NetworkOptions options;
  options.n = 80;
  options.seed = 3;
  const auto network = net::Network::build(options);
  net::Topology t(80);
  util::Rng rng(3);
  topo::build_random(t, rng);

  sim::ObservationTable obs;
  obs.begin_round(t, 2);
  sim::GossipConfig config;
  config.record_edge_times = true;
  obs.record_gossip_block(sim::simulate_gossip(t, network, 5, config));
  obs.record_gossip_block(sim::simulate_gossip(t, network, 50, config));

  for (net::NodeId v = 0; v < t.size(); ++v) {
    for (std::size_t b = 0; b < 2; ++b) {
      double min_rel = util::kInf;
      for (std::size_t i = 0; i < obs.neighbor_count(v); ++i) {
        min_rel = std::min(min_rel, obs.rel_times(v, i)[b]);
      }
      EXPECT_DOUBLE_EQ(min_rel, 0.0) << "node " << v << " block " << b;
    }
  }
}

TEST(EngineParity, GossipTrainedPerigeeBeatsRandom) {
  core::ExperimentConfig config;
  config.net.n = 200;
  config.rounds = 20;
  config.blocks_per_round = 60;
  config.seed = 4;
  config.message_level = true;

  config.algorithm = core::Algorithm::Random;
  const double random = util::mean(core::run_experiment(config).lambda);
  config.algorithm = core::Algorithm::PerigeeSubset;
  const double subset = util::mean(core::run_experiment(config).lambda);
  EXPECT_LT(subset, random * 0.94);
}

TEST(EngineParity, EnginesAgreeOnLearnedQuality) {
  // Train with each engine, evaluate both topologies with the same fast
  // metric: the message-level run must land within a modest band of the
  // fast run (the engines rank neighbors by the same signal).
  core::ExperimentConfig config;
  config.net.n = 200;
  config.rounds = 12;
  config.blocks_per_round = 40;
  config.seed = 5;
  config.algorithm = core::Algorithm::PerigeeSubset;

  config.message_level = false;
  const double fast = util::mean(core::run_experiment(config).lambda);
  config.message_level = true;
  const double gossip = util::mean(core::run_experiment(config).lambda);
  EXPECT_NEAR(gossip / fast, 1.0, 0.12);
}

TEST(EngineParity, BlockHookShimReportsFiniteArrivals) {
  net::NetworkOptions options;
  options.n = 60;
  options.seed = 6;
  const auto network = net::Network::build(options);
  net::Topology t(60);
  util::Rng rng(6);
  topo::build_random(t, rng);
  std::vector<std::unique_ptr<sim::NeighborSelector>> selectors;
  for (int i = 0; i < 60; ++i) {
    selectors.push_back(std::make_unique<sim::StaticSelector>());
  }
  sim::RoundRunner runner(network, t, std::move(selectors), 5, 6,
                          sim::RoundRunner::Engine::Gossip);
  int blocks = 0;
  runner.set_block_hook([&](const sim::BroadcastResult& result) {
    ++blocks;
    EXPECT_DOUBLE_EQ(result.arrival[result.miner], 0.0);
    for (net::NodeId v = 0; v < 60; ++v) {
      EXPECT_TRUE(std::isfinite(result.arrival[v]));
      EXPECT_GE(result.ready[v], result.arrival[v]);
    }
  });
  runner.run_round();
  EXPECT_EQ(blocks, 5);
}

}  // namespace
}  // namespace perigee
