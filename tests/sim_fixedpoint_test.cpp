// Property suite for the fixed-point delay grid (util/fixedpoint.hpp) and
// the compact CSR snapshot built on it (net::CompactCsr):
//
//  - quantization is an exact floor (dequantize(q(x)) <= x < next cell) and
//    therefore order-preserving — ties allowed, inversions never — over
//    random delay distributions spanning several magnitudes;
//  - quantization error is one-sided and strictly below step();
//  - `fit` puts the largest value in [2^(bits-1), 2^bits): maximal
//    resolution that still fits the target width;
//  - `bucket_width_shift` never violates the delta-stepping ceiling
//    2 * width <= min-delay, as an exact integer inequality;
//  - a CompactCsr transcribes its source snapshot faithfully (rows, flags,
//    floor-quantized delays, exact min/max), costs less memory, and its
//    engine's arrivals lower-approximate the double oracle within the
//    per-hop error bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/broadcast.hpp"
#include "sim/parallel.hpp"
#include "topo/builders.hpp"
#include "util/fixedpoint.hpp"
#include "util/rng.hpp"

namespace perigee {
namespace {

// Random positive delays spanning several orders of magnitude, plus the
// exact edge values a uniform generator would miss.
std::vector<double> delay_samples(std::uint64_t seed, double max_value) {
  util::Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) {
    // uniform() in (0,1); cubing skews mass towards tiny delays, the regime
    // where floor quantization has the most relative effect.
    const double u = rng.uniform();
    xs.push_back(u * u * u * max_value);
  }
  xs.push_back(0.0);
  xs.push_back(max_value);
  xs.push_back(std::nextafter(max_value, 0.0));
  xs.push_back(max_value / 3.0);
  return xs;
}

TEST(FixedPoint, QuantizeIsAnExactFloorWithBoundedOneSidedError) {
  for (const double max_value : {1.0, 7.3, 250.0, 12345.678}) {
    const auto scale = util::FixedPointScale::fit(max_value, 31);
    for (const double x : delay_samples(99, max_value)) {
      const std::uint64_t q = scale.quantize(x);
      // Exact floor: x lands in [cell q, cell q+1).
      EXPECT_LE(scale.dequantize(q), x);
      EXPECT_LT(x, scale.dequantize(q + 1));
      // One-sided error strictly below one grid step.
      const double err = x - scale.dequantize(q);
      EXPECT_GE(err, 0.0);
      EXPECT_LT(err, scale.step());
    }
  }
}

TEST(FixedPoint, QuantizationPreservesOrder) {
  for (const double max_value : {2.0, 610.5}) {
    const auto scale = util::FixedPointScale::fit(max_value, 31);
    auto xs = delay_samples(7, max_value);
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 1; i < xs.size(); ++i) {
      // Monotone: ties may appear, inversions may not.
      EXPECT_LE(scale.quantize(xs[i - 1]), scale.quantize(xs[i]))
          << xs[i - 1] << " vs " << xs[i];
    }
  }
}

TEST(FixedPoint, FitTargetsTheRequestedBitWidth) {
  for (const double max_value : {1e-6, 0.5, 1.0, 3.0, 4096.0, 9.9e7}) {
    for (const int bits : {20, 31}) {
      const auto scale = util::FixedPointScale::fit(max_value, bits);
      const std::uint64_t q = scale.quantize(max_value);
      EXPECT_GE(q, std::uint64_t{1} << (bits - 1)) << max_value;
      EXPECT_LT(q, std::uint64_t{1} << bits) << max_value;
    }
  }
  // Degenerate maxima get the unit grid instead of UB.
  EXPECT_EQ(util::FixedPointScale::fit(0.0, 31).exponent, 0);
  EXPECT_EQ(util::FixedPointScale::fit(-1.0, 31).exponent, 0);
}

TEST(FixedPoint, BucketWidthShiftNeverViolatesTheHalfMinDelayCeiling) {
  // No admissible width below q = 2 (width 1 would need 2 * 1 <= q).
  EXPECT_FALSE(util::bucket_width_shift(0).has_value());
  EXPECT_FALSE(util::bucket_width_shift(1).has_value());
  util::Rng rng(11);
  std::vector<std::uint64_t> qs = {2, 3, 4, 5, 7, 8, 1023, 1024,
                                   (std::uint64_t{1} << 52) - 1};
  for (int i = 0; i < 500; ++i) {
    qs.push_back(2 + rng.uniform_index((std::uint64_t{1} << 40)));
  }
  for (const std::uint64_t q : qs) {
    const auto shift = util::bucket_width_shift(q);
    ASSERT_TRUE(shift.has_value()) << q;
    ASSERT_GE(*shift, 0) << q;
    const std::uint64_t width = std::uint64_t{1} << *shift;
    // The delta-stepping ceiling, exact: twice the width fits under the
    // quantized min delay...
    EXPECT_LE(2 * width, q) << q;
    // ... and the width is maximal: one doubling would break the ceiling.
    EXPECT_GT(4 * width, q) << q;
  }
}

net::CsrTopology build_random_csr(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  const net::Network network = net::Network::build(options);
  net::Topology topology(n);
  util::Rng rng(seed);
  topo::build_random(topology, rng);
  return net::CsrTopology::build(topology, network);
}

TEST(FixedPoint, CompactCsrTranscribesTheSnapshotExactly) {
  const net::CsrTopology csr = build_random_csr(120, 17);
  const net::CompactCsr compact = net::CompactCsr::build(csr);

  ASSERT_EQ(compact.size(), csr.size());
  ASSERT_EQ(compact.num_links(), csr.num_links());
  const auto& scale = compact.scale();
  std::uint32_t min_q = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_q = 0;
  for (net::NodeId v = 0; v < csr.size(); ++v) {
    EXPECT_EQ(compact.forwards(v), csr.forwards(v)) << v;
    EXPECT_EQ(compact.validation_q(v), scale.quantize(csr.validation_ms(v)))
        << v;
    const auto peers = csr.peers(v);
    const auto delays = csr.delays(v);
    const std::uint32_t begin = compact.offsets()[v];
    ASSERT_EQ(compact.offsets()[v + 1] - begin, peers.size()) << v;
    for (std::size_t i = 0; i < peers.size(); ++i) {
      EXPECT_EQ(compact.peer_data()[begin + i], peers[i]);
      const std::uint32_t dq = compact.delay_data()[begin + i];
      EXPECT_EQ(dq, scale.quantize(delays[i]));
      min_q = std::min(min_q, dq);
      max_q = std::max(max_q, dq);
    }
  }
  EXPECT_EQ(compact.min_delay_q(), min_q);
  EXPECT_EQ(compact.max_delay_q(), max_q);
  // The point of the exercise: a strictly smaller snapshot (u32 ids + one
  // u32 delay channel vs size_t offsets + two double channels + slack).
  EXPECT_LT(compact.memory_bytes(), csr.memory_bytes());
}

TEST(FixedPoint, CompactArrivalsLowerApproximateTheDoubleOracle) {
  for (const std::uint64_t seed : {3u, 29u, 71u}) {
    const net::CsrTopology csr = build_random_csr(100, seed);
    const net::CompactCsr compact = net::CompactCsr::build(csr);
    const auto& scale = compact.scale();

    sim::BroadcastScratch scratch;
    sim::BroadcastResult oracle;
    sim::ParallelScratch parallel_scratch;
    std::vector<std::uint64_t> arrival_q(csr.size());
    for (const net::NodeId src : {net::NodeId{0}, net::NodeId{41}}) {
      sim::simulate_broadcast(csr, src, scratch, oracle);
      sim::simulate_broadcast_compact(compact, src, parallel_scratch,
                                      arrival_q.data());
      // Every term of every path underestimates by < step(), and a path
      // visits at most n nodes contributing a validation + an edge delay
      // each: the dequantized arrival sits within 2n steps below the
      // oracle. (A shorter bound would need per-path hop counts; this one
      // is already ~10^-3 relative at n = 100 and 31-bit grids.)
      const double bound =
          2.0 * static_cast<double>(csr.size()) * scale.step();
      // fl-vs-exact accumulation noise in the double oracle is orders of
      // magnitude below step(); this slack covers it.
      const double fl_slack = 1e-6;
      for (net::NodeId v = 0; v < csr.size(); ++v) {
        if (!std::isfinite(oracle.arrival[v])) {
          EXPECT_EQ(arrival_q[v], sim::kUnreachedQ) << "node " << v;
          continue;
        }
        ASSERT_NE(arrival_q[v], sim::kUnreachedQ) << "node " << v;
        const double approx = scale.dequantize(arrival_q[v]);
        EXPECT_LE(approx, oracle.arrival[v] + fl_slack) << "node " << v;
        EXPECT_GE(approx, oracle.arrival[v] - bound) << "node " << v;
      }
    }
  }
}

}  // namespace
}  // namespace perigee
