#include "sim/gossip.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/broadcast.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee::sim {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed,
                          double handshake_factor) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  options.handshake_factor = handshake_factor;
  return net::Network::build(options);
}

TEST(Gossip, PushModeMatchesFastEngineExactly) {
  // With direct pushes and handshake_factor = 1 the event-driven engine and
  // the Dijkstra engine are the same model; arrival times must agree.
  const auto network = make_network(150, 9, 1.0);
  net::Topology t(150);
  util::Rng rng(9);
  topo::build_random(t, rng);

  GossipConfig config;
  config.mode = GossipConfig::Mode::Push;
  for (net::NodeId miner : {net::NodeId{0}, net::NodeId{37}, net::NodeId{149}}) {
    const auto fast = simulate_broadcast(t, network, miner);
    const auto gossip = simulate_gossip(t, network, miner, config);
    for (net::NodeId v = 0; v < t.size(); ++v) {
      EXPECT_NEAR(gossip.arrival[v], fast.arrival[v], 1e-6)
          << "miner " << miner << " node " << v;
    }
  }
}

TEST(Gossip, HandshakeIsSlowerThanPush) {
  const auto network = make_network(100, 10, 1.0);
  net::Topology t(100);
  util::Rng rng(10);
  topo::build_random(t, rng);
  GossipConfig push;
  push.mode = GossipConfig::Mode::Push;
  GossipConfig inv;
  inv.mode = GossipConfig::Mode::InvGetdata;
  const auto a = simulate_gossip(t, network, 0, push);
  const auto b = simulate_gossip(t, network, 0, inv);
  for (net::NodeId v = 1; v < t.size(); ++v) {
    EXPECT_GE(b.arrival[v], a.arrival[v] - 1e-9);
  }
  // And strictly slower for almost all nodes (3 legs vs 1 per hop).
  int strictly = 0;
  for (net::NodeId v = 1; v < t.size(); ++v) {
    if (b.arrival[v] > a.arrival[v] + 1e-9) ++strictly;
  }
  EXPECT_GT(strictly, 90);
}

TEST(Gossip, HandshakeApproximatesHandshakeFactorThree) {
  // The fast engine's handshake_factor = 3 abstraction should approximate
  // the explicit INV/GETDATA/BLOCK exchange: compare mean arrival times.
  const auto net1 = make_network(120, 11, 1.0);  // gossip: explicit handshake
  const auto net3 = make_network(120, 11, 3.0);  // fast: 3x abstraction
  net::Topology t(120);
  util::Rng rng(11);
  topo::build_random(t, rng);

  GossipConfig inv;
  inv.mode = GossipConfig::Mode::InvGetdata;
  const auto gossip = simulate_gossip(t, net1, 5, inv);
  const auto fast = simulate_broadcast(t, net3, 5);
  double gossip_mean = 0, fast_mean = 0;
  for (net::NodeId v = 0; v < t.size(); ++v) {
    gossip_mean += gossip.arrival[v];
    fast_mean += fast.arrival[v];
  }
  gossip_mean /= static_cast<double>(t.size());
  fast_mean /= static_cast<double>(t.size());
  // The abstraction overestimates slightly (gossip pipelines INVs while the
  // requested block is in flight), so allow a generous band.
  EXPECT_NEAR(gossip_mean / fast_mean, 1.0, 0.35);
}

TEST(Gossip, EveryoneReachedOnConnectedGraph) {
  const auto network = make_network(200, 12, 1.0);
  net::Topology t(200);
  util::Rng rng(12);
  topo::build_random(t, rng);
  const auto result = simulate_gossip(t, network, 3);
  for (net::NodeId v = 0; v < t.size(); ++v) {
    EXPECT_TRUE(std::isfinite(result.arrival[v]));
    EXPECT_TRUE(std::isfinite(result.first_announce[v]));
    EXPECT_LE(result.first_announce[v], result.arrival[v] + 1e-9);
  }
}

TEST(Gossip, EdgeTimesRecordedWhenRequested) {
  const auto network = make_network(50, 13, 1.0);
  net::Topology t(50);
  util::Rng rng(13);
  topo::build_random(t, rng);
  GossipConfig config;
  config.record_edge_times = true;
  const auto result = simulate_gossip(t, network, 0, config);
  EXPECT_FALSE(result.edge_times.empty());
  // Every recorded edge time belongs to an actual adjacency.
  for (const auto& et : result.edge_times) {
    EXPECT_TRUE(t.are_adjacent(et.to, et.from));
    EXPECT_GE(et.time_ms, 0.0);
  }
  // Each node should eventually hear an announcement from every neighbor.
  std::vector<std::size_t> announce_count(t.size(), 0);
  for (const auto& et : result.edge_times) ++announce_count[et.to];
  for (net::NodeId v = 0; v < t.size(); ++v) {
    if (v == 0) continue;
    EXPECT_EQ(announce_count[v], t.adjacency(v).size());
  }
}

TEST(Gossip, IsolatedNodeNeverArrives) {
  const auto network = make_network(10, 14, 1.0);
  net::Topology t(10);
  t.connect(0, 1);  // nodes 2..9 isolated
  const auto result = simulate_gossip(t, network, 0);
  EXPECT_TRUE(std::isfinite(result.arrival[1]));
  for (net::NodeId v = 2; v < 10; ++v) {
    EXPECT_TRUE(std::isinf(result.arrival[v]));
  }
}

TEST(Gossip, MessageCountBounded) {
  // Handshake mode: each directed adjacency pair carries at most one INV per
  // holder, plus one GETDATA and one BLOCK per node: O(E + V).
  const auto network = make_network(100, 15, 1.0);
  net::Topology t(100);
  util::Rng rng(15);
  topo::build_random(t, rng);
  const auto result = simulate_gossip(t, network, 0);
  const std::size_t edges = t.num_p2p_edges();
  EXPECT_LE(result.messages_processed, 2 * edges + 2 * t.size() + 2 * edges);
  EXPECT_GE(result.messages_processed, edges);
}

TEST(Gossip, MinerAnnouncesWithoutValidation) {
  net::NetworkOptions options;
  options.n = 2;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  options.handshake_factor = 1.0;
  options.validation_mean_ms = 500.0;
  options.validation_spread = 0.0;
  auto network = net::Network::build(options);
  network.mutable_profiles()[0].coords = {0, 0, 0, 0, 0};
  network.mutable_profiles()[1].coords = {10, 0, 0, 0, 0};
  net::Topology t(2);
  t.connect(0, 1);
  const auto result = simulate_gossip(t, network, 0);
  // INV at 10, GETDATA back at 20, BLOCK at 30 — miner validation never
  // enters; receiver validation delays only onward relay (none here).
  EXPECT_DOUBLE_EQ(result.first_announce[1], 10.0);
  EXPECT_DOUBLE_EQ(result.arrival[1], 30.0);
}

}  // namespace
}  // namespace perigee::sim
