#include "sim/observations.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "topo/builders.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace perigee::sim {
namespace {

net::Network make_line_network(const std::vector<double>& xs,
                               double validation_ms) {
  net::NetworkOptions options;
  options.n = xs.size();
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 1;
  options.embed_scale_ms = 1.0;
  options.handshake_factor = 1.0;
  options.validation_spread = 0.0;
  options.validation_mean_ms = validation_ms;
  net::Network network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    profiles[i].coords = {xs[i], 0, 0, 0, 0};
  }
  return network;
}

TEST(Observations, CapturesNeighborsAtRoundStart) {
  net::Topology t(4);
  t.connect(0, 1);
  t.connect(2, 0);
  ObservationTable obs;
  obs.begin_round(t, 5);
  // Node 0 sees both its outgoing (1) and incoming (2) neighbor.
  EXPECT_EQ(obs.neighbor_count(0), 2u);
  bool saw_out = false, saw_in = false;
  for (std::size_t i = 0; i < obs.neighbor_count(0); ++i) {
    if (obs.neighbors(0)[i] == 1) {
      saw_out = true;
      EXPECT_TRUE(obs.is_outgoing(0, i));
    }
    if (obs.neighbors(0)[i] == 2) {
      saw_in = true;
      EXPECT_FALSE(obs.is_outgoing(0, i));
    }
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST(Observations, RelativeTimesNormalizedPerBlock) {
  // Line: 0 --10-- 1 --20-- 2, validation 5ms. Node 2 has neighbors 1 and 0
  // (direct long link 40ms).
  auto network = make_line_network({0.0, 10.0, 30.0}, 5.0);
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(1, 2);
  t.connect(2, 0);  // long direct link 0-2, dialed by 2

  ObservationTable obs;
  obs.begin_round(t, 1);
  const auto result = simulate_broadcast(t, network, 0);
  obs.record_block(t, network, result);

  // Deliveries to node 2: from 1 at ready(1)+20 = 35; from 0 at 0+30 = 30.
  // Normalized: from 0 -> 0.0, from 1 -> 5.0.
  for (std::size_t i = 0; i < obs.neighbor_count(2); ++i) {
    const double rel = obs.rel_times(2, i)[0];
    if (obs.neighbors(2)[i] == 0) { EXPECT_DOUBLE_EQ(rel, 0.0); }
    if (obs.neighbors(2)[i] == 1) { EXPECT_DOUBLE_EQ(rel, 5.0); }
  }
}

TEST(Observations, MinRelTimeIsZeroForEveryNodeAndBlock) {
  net::NetworkOptions options;
  options.n = 100;
  options.seed = 3;
  const auto network = net::Network::build(options);
  net::Topology t(100);
  util::Rng rng(3);
  topo::build_random(t, rng);

  ObservationTable obs;
  obs.begin_round(t, 3);
  util::Rng miner_rng(4);
  for (int b = 0; b < 3; ++b) {
    const auto miner = static_cast<net::NodeId>(miner_rng.uniform_index(100));
    obs.record_block(t, network, simulate_broadcast(t, network, miner));
  }
  EXPECT_EQ(obs.blocks_recorded(), 3u);
  for (net::NodeId v = 0; v < 100; ++v) {
    for (std::size_t b = 0; b < 3; ++b) {
      double min_rel = util::kInf;
      for (std::size_t i = 0; i < obs.neighbor_count(v); ++i) {
        min_rel = std::min(min_rel, obs.rel_times(v, i)[b]);
      }
      EXPECT_DOUBLE_EQ(min_rel, 0.0) << "node " << v << " block " << b;
    }
  }
}

TEST(Observations, UnreachedNeighborIsInfinite) {
  auto network = make_line_network({0.0, 10.0, 1000.0, 1010.0}, 1.0);
  net::Topology t(4);
  t.connect(0, 1);
  t.connect(2, 3);
  t.connect(1, 2);  // bridge
  // Disconnect the bridge after capture to simulate an isolated island:
  // instead, build without the bridge.
  net::Topology island(4);
  island.connect(0, 1);
  island.connect(2, 3);
  ObservationTable obs;
  obs.begin_round(island, 1);
  const auto result = simulate_broadcast(island, network, 0);
  obs.record_block(island, network, result);
  // Node 2's only neighbor (3) never delivers: rel time stays +inf.
  EXPECT_EQ(obs.neighbor_count(2), 1u);
  EXPECT_TRUE(std::isinf(obs.rel_times(2, 0)[0]));
}

TEST(Observations, RelTimesLengthTracksRecordedBlocks) {
  auto network = make_line_network({0.0, 10.0}, 1.0);
  net::Topology t(2);
  t.connect(0, 1);
  ObservationTable obs;
  obs.begin_round(t, 10);
  EXPECT_EQ(obs.blocks_capacity(), 10u);
  EXPECT_EQ(obs.rel_times(0, 0).size(), 0u);
  obs.record_block(t, network, simulate_broadcast(t, network, 0));
  EXPECT_EQ(obs.rel_times(0, 0).size(), 1u);
  obs.record_block(t, network, simulate_broadcast(t, network, 1));
  EXPECT_EQ(obs.rel_times(0, 0).size(), 2u);
}

TEST(Observations, MinerSideObservationsEcho) {
  // Even the miner records deliveries from its neighbors (echoes of its own
  // block), normalized among themselves.
  auto network = make_line_network({0.0, 10.0, 20.0}, 5.0);
  net::Topology t(3);
  t.connect(0, 1);
  t.connect(0, 2);
  ObservationTable obs;
  obs.begin_round(t, 1);
  obs.record_block(t, network, simulate_broadcast(t, network, 0));
  // Echo from 1: ready(1)+10 = 25. Echo from 2: ready(2)+20 = 45.
  // Normalized: 0 and 20.
  for (std::size_t i = 0; i < obs.neighbor_count(0); ++i) {
    const double rel = obs.rel_times(0, i)[0];
    if (obs.neighbors(0)[i] == 1) { EXPECT_DOUBLE_EQ(rel, 0.0); }
    if (obs.neighbors(0)[i] == 2) { EXPECT_DOUBLE_EQ(rel, 20.0); }
  }
}

TEST(Observations, InfraNeighborsIncludedButNotOutgoing) {
  auto network = make_line_network({0.0, 10.0, 20.0}, 1.0);
  net::Topology t(3);
  t.add_infra_edge(0, 1, 2.0);
  t.connect(0, 2);
  ObservationTable obs;
  obs.begin_round(t, 1);
  EXPECT_EQ(obs.neighbor_count(0), 2u);
  for (std::size_t i = 0; i < obs.neighbor_count(0); ++i) {
    if (obs.neighbors(0)[i] == 1) { EXPECT_FALSE(obs.is_outgoing(0, i)); }
    if (obs.neighbors(0)[i] == 2) { EXPECT_TRUE(obs.is_outgoing(0, i)); }
  }
}

}  // namespace
}  // namespace perigee::sim
