#include "sim/rounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/perigee.hpp"
#include "sim/broadcast.hpp"
#include "topo/builders.hpp"

namespace perigee::sim {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed = 1) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

std::vector<std::unique_ptr<NeighborSelector>> static_selectors(std::size_t n) {
  std::vector<std::unique_ptr<NeighborSelector>> selectors;
  for (std::size_t i = 0; i < n; ++i) {
    selectors.push_back(std::make_unique<StaticSelector>());
  }
  return selectors;
}

TEST(RoundRunner, RunsConfiguredBlocks) {
  const auto network = make_network(50);
  net::Topology t(50);
  util::Rng rng(1);
  topo::build_random(t, rng);
  RoundRunner runner(network, t, static_selectors(50), 7, 99);
  runner.run_round();
  EXPECT_EQ(runner.rounds_run(), 1u);
  EXPECT_EQ(runner.observations().blocks_recorded(), 7u);
  runner.run_rounds(3);
  EXPECT_EQ(runner.rounds_run(), 4u);
}

TEST(RoundRunner, StaticSelectorsKeepTopologyFixed) {
  const auto network = make_network(60);
  net::Topology t(60);
  util::Rng rng(2);
  topo::build_random(t, rng);
  const auto before = t.p2p_edges();
  RoundRunner runner(network, t, static_selectors(60), 10, 3);
  runner.run_rounds(5);
  EXPECT_EQ(t.p2p_edges(), before);
}

TEST(RoundRunner, BlockHookSeesEveryBlock) {
  const auto network = make_network(30);
  net::Topology t(30);
  util::Rng rng(3);
  topo::build_random(t, rng);
  RoundRunner runner(network, t, static_selectors(30), 12, 4);
  int blocks = 0;
  runner.set_block_hook([&](const BroadcastResult& result) {
    ++blocks;
    EXPECT_LT(result.miner, 30u);
    EXPECT_DOUBLE_EQ(result.arrival[result.miner], 0.0);
  });
  runner.run_rounds(2);
  EXPECT_EQ(blocks, 24);
}

TEST(RoundRunner, MinersFollowHashPower) {
  auto network = make_network(40);
  // Give node 5 the lion's share.
  for (net::NodeId v = 0; v < 40; ++v) {
    network.mutable_profiles()[v].hash_power = (v == 5) ? 0.9 : 0.1 / 39.0;
  }
  net::Topology t(40);
  util::Rng rng(4);
  topo::build_random(t, rng);
  RoundRunner runner(network, t, static_selectors(40), 50, 5);
  int from_five = 0, total = 0;
  runner.set_block_hook([&](const BroadcastResult& result) {
    ++total;
    if (result.miner == 5) ++from_five;
  });
  runner.run_rounds(10);  // 500 blocks
  EXPECT_NEAR(static_cast<double>(from_five) / total, 0.9, 0.05);
}

TEST(RoundRunner, RefreshHashPowerTakesEffect) {
  auto network = make_network(30);
  net::Topology t(30);
  util::Rng rng(5);
  topo::build_random(t, rng);
  RoundRunner runner(network, t, static_selectors(30), 40, 6);
  // Concentrate all hash power on node 0 *after* construction.
  for (net::NodeId v = 0; v < 30; ++v) {
    network.mutable_profiles()[v].hash_power = (v == 0) ? 1.0 : 0.0;
  }
  runner.refresh_hash_power();
  int non_zero_miners = 0;
  runner.set_block_hook([&](const BroadcastResult& result) {
    if (result.miner != 0) ++non_zero_miners;
  });
  runner.run_rounds(3);
  EXPECT_EQ(non_zero_miners, 0);
}

TEST(RoundRunner, DeterministicAcrossIdenticalRuns) {
  const auto network = make_network(80, 7);
  auto run_once = [&]() {
    net::Topology t(80);
    util::Rng rng(7);
    topo::build_random(t, rng);
    RoundRunner runner(network, t,
                       core::make_selectors(80, core::Algorithm::PerigeeSubset),
                       20, 7);
    runner.run_rounds(5);
    return t.p2p_edges();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(RoundRunner, AdaptiveSelectorsRespectDegreeCaps) {
  const auto network = make_network(100, 8);
  net::Topology t(100);
  util::Rng rng(8);
  topo::build_random(t, rng);
  RoundRunner runner(network, t,
                     core::make_selectors(100, core::Algorithm::PerigeeSubset),
                     15, 8);
  runner.run_rounds(6);
  t.validate();  // caps + symmetry + dedup all hold after heavy rewiring
  for (net::NodeId v = 0; v < 100; ++v) {
    EXPECT_LE(t.out_count(v), t.limits().out_cap);
    EXPECT_LE(t.in_count(v), t.limits().in_cap);
  }
}

}  // namespace
}  // namespace perigee::sim
