// Scale soak (integration tier): one n = 10^5 single-source broadcast
// through the parallel delta-stepping engine, held to
//
//  - completion: every BFS-reachable node gets a finite arrival, every
//    unreachable node stays +inf (exact count equality, not a sample);
//  - byte parity with the single-source CSR reference engine at this scale;
//  - the compact fixed-point snapshot strictly undercuts the double
//    snapshot's footprint and its engine agrees on reachability;
//  - the whole process stays under a declared peak-RSS budget
//    (obs::peak_rss_kb, i.e. VmHWM — the same number BENCH_scale.json
//    anchors), scaled up under sanitizer builds for shadow/redzone cost.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "net/csr.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/meta.hpp"
#include "runner/thread_pool.hpp"
#include "sim/broadcast.hpp"
#include "sim/parallel.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PERIGEE_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PERIGEE_TEST_SANITIZED 1
#endif
#endif

namespace perigee {
namespace {

constexpr std::size_t kNodes = 100000;
// Declared budget for the whole soak process at n = 10^5: snapshot (~60 MB
// with patchable slab slack) + topology + network + engine scratch + result
// stripes leave ample slack below this. Sanitizers multiply real memory by
// shadow + redzones; give them 4x.
#ifdef PERIGEE_TEST_SANITIZED
constexpr std::int64_t kPeakRssBudgetKb = 4 * std::int64_t{1048576};
#else
constexpr std::int64_t kPeakRssBudgetKb = 1048576;  // 1 GiB
#endif

std::size_t reachable_count(const net::CsrTopology& csr, net::NodeId src) {
  std::vector<char> seen(csr.size(), 0);
  std::vector<net::NodeId> stack{src};
  seen[src] = 1;
  std::size_t count = 1;
  while (!stack.empty()) {
    const net::NodeId u = stack.back();
    stack.pop_back();
    if (!csr.forwards(u) && u != src) continue;
    for (const net::NodeId v : csr.peers(u)) {
      if (seen[v] == 0) {
        seen[v] = 1;
        ++count;
        stack.push_back(v);
      }
    }
  }
  return count;
}

TEST(ScaleSoak, HundredThousandNodeBroadcastCompletesWithinBudget) {
  net::NetworkOptions options;
  options.n = kNodes;
  options.seed = 4242;
  const net::Network network = net::Network::build(options);
  net::Topology topology(kNodes);
  util::Rng rng(4242);
  topo::build_random(topology, rng);
  const net::CsrTopology csr = net::CsrTopology::build(topology, network);
  ASSERT_EQ(csr.size(), kNodes);

  const net::NodeId src = 12345;
  const std::size_t reachable = reachable_count(csr, src);
  // A random dout=8 digraph at this size is connected for all practical
  // purposes; guard the premise so a silently-empty graph cannot pass.
  ASSERT_GT(reachable, kNodes / 2);

  // The tentpole path: one source, a worker team inside the broadcast.
  runner::ThreadPool pool(2);
  sim::ParallelScratch scratch;
  sim::BroadcastResult result;
  sim::simulate_broadcast_parallel(csr, src, scratch, result, &pool);

  std::size_t finite = 0;
  for (const double a : result.arrival) finite += std::isfinite(a) ? 1 : 0;
  EXPECT_EQ(finite, reachable);
  EXPECT_EQ(result.arrival[src], 0.0);
  EXPECT_EQ(result.ready[src], 0.0);

  // Byte parity with the single-source reference engine holds at scale,
  // not just on the diff harness's small graphs.
  sim::BroadcastScratch ref_scratch;
  sim::BroadcastResult reference;
  sim::simulate_broadcast(csr, src, ref_scratch, reference);
  ASSERT_EQ(reference.arrival.size(), result.arrival.size());
  EXPECT_EQ(std::memcmp(reference.arrival.data(), result.arrival.data(),
                        kNodes * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(reference.ready.data(), result.ready.data(),
                        kNodes * sizeof(double)),
            0);

  // Compact world at scale: strictly smaller snapshot, same reachability.
  const net::CompactCsr compact = net::CompactCsr::build(csr);
  EXPECT_LT(compact.memory_bytes(), csr.memory_bytes());
  std::vector<std::uint64_t> arrival_q(kNodes);
  sim::simulate_broadcast_compact(compact, src, scratch, arrival_q.data(),
                                  &pool);
  std::size_t finite_q = 0;
  for (const std::uint64_t q : arrival_q) {
    finite_q += q != sim::kUnreachedQ ? 1 : 0;
  }
  EXPECT_EQ(finite_q, reachable);

  // The budget BENCH_scale.json anchors, asserted on the live process.
  const std::int64_t peak_kb = obs::peak_rss_kb();
  ASSERT_GT(peak_kb, 0) << "VmHWM unavailable";
  EXPECT_LT(peak_kb, kPeakRssBudgetKb)
      << "peak RSS " << peak_kb << " KiB exceeds the declared "
      << kPeakRssBudgetKb << " KiB scale budget";
}

}  // namespace
}  // namespace perigee
