// Integration suite for the sweep service (runner/sweep.hpp +
// runner/checkpoint.hpp): crash/resume, shard/merge, and cross-cell build
// reuse must all reproduce the single-process uninterrupted run byte for
// byte — the acceptance bar of the service, checked here on real (small)
// grids end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/checkpoint.hpp"
#include "runner/json.hpp"
#include "runner/sweep.hpp"

namespace perigee::runner {
namespace {

namespace fs = std::filesystem;

// 3 cells x 2 seeds = 6 jobs; algorithm is a policy axis, so all three cells
// of one seed share a scenario build.
SweepSpec service_spec() {
  SweepSpec spec;
  spec.name = "service";
  spec.base.net.n = 48;
  spec.base.rounds = 2;
  spec.base.seed = 11;
  spec.seeds = 2;
  spec.algorithms = {core::Algorithm::Random, core::Algorithm::PerigeeSubset,
                     core::Algorithm::Ideal};
  return spec;
}

std::string json_bytes(const SweepSpec& spec, const SweepResult& result) {
  std::ostringstream os;
  write_json(os, spec, result);
  return os.str();
}

// Fresh per-test scratch directory under the gtest temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  return dir;
}

TEST(GridFingerprint, StableAndSensitiveToResultAxes) {
  const SweepSpec spec = service_spec();
  const std::string fingerprint = grid_fingerprint(spec);
  EXPECT_EQ(fingerprint, grid_fingerprint(spec));  // pure function

  SweepSpec changed = service_spec();
  changed.base.seed = 12;
  EXPECT_NE(grid_fingerprint(changed), fingerprint);
  changed = service_spec();
  changed.seeds = 3;
  EXPECT_NE(grid_fingerprint(changed), fingerprint);
  changed = service_spec();
  changed.nodes = {48, 64};
  EXPECT_NE(grid_fingerprint(changed), fingerprint);
  changed = service_spec();
  changed.base.scenario.churn.rate = 0.05;
  EXPECT_NE(grid_fingerprint(changed), fingerprint);
}

TEST(GridFingerprint, IgnoresWallClockOnlyKnobs) {
  // A checkpoint taken under one engine must resume under another: these
  // switches are byte-parity-pinned elsewhere and not result axes.
  const std::string fingerprint = grid_fingerprint(service_spec());
  SweepSpec changed = service_spec();
  changed.base.engine_jobs = 8;
  changed.base.incremental_csr = false;
  changed.base.relax_engine = sim::RelaxEngine::ParallelDelta;
  EXPECT_EQ(grid_fingerprint(changed), fingerprint);
}

TEST(ScenarioSignature, SeparatesBuildAxesFromPolicyAxes) {
  core::ExperimentConfig a = service_spec().base;
  core::ExperimentConfig b = a;

  // Policy axes: same build, different learning loop.
  b.algorithm = core::Algorithm::Random;
  b.rounds = 7;
  b.scenario.churn.rate = 0.1;
  EXPECT_EQ(scenario_signature(a), scenario_signature(b));

  // Build axes: any of these samples a different network.
  b = a;
  b.net.n = 64;
  EXPECT_NE(scenario_signature(a), scenario_signature(b));
  b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(scenario_signature(a), scenario_signature(b));
  b = a;
  b.net.validation_scale = 5.0;
  EXPECT_NE(scenario_signature(a), scenario_signature(b));
  b = a;
  b.relay = true;
  EXPECT_NE(scenario_signature(a), scenario_signature(b));
  b = a;
  b.scenario.hetero.profile = scenario::HeteroProfile::Bandwidth;
  EXPECT_NE(scenario_signature(a), scenario_signature(b));
}

TEST(CheckpointStore, RoundTripsSlotsExactlyIncludingNonFinite) {
  const std::string dir = scratch_dir("perigee_ckpt_roundtrip");
  const CheckpointStore store(dir, "fp-test");
  store.prepare();

  SlotCurves slot;
  slot.cell = 2;
  slot.seed = 1;
  slot.lambda = {1.5, std::numeric_limits<double>::infinity(), 0.1 + 0.2};
  slot.lambda50 = {-std::numeric_limits<double>::infinity(), 3.25};
  ASSERT_TRUE(store.save(slot));

  const std::vector<SlotCurves> loaded = store.load_all();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cell, 2u);
  EXPECT_EQ(loaded[0].seed, 1u);
  ASSERT_EQ(loaded[0].lambda.size(), 3u);
  EXPECT_EQ(loaded[0].lambda[0], 1.5);
  EXPECT_TRUE(std::isinf(loaded[0].lambda[1]));
  EXPECT_GT(loaded[0].lambda[1], 0);
  // Bit-exact, not approximately: 0.1 + 0.2 != 0.3 and the codec must keep
  // that distinction or resumed aggregates drift off the reference bytes.
  EXPECT_EQ(loaded[0].lambda[2], 0.1 + 0.2);
  EXPECT_TRUE(std::isinf(loaded[0].lambda50[0]));
  EXPECT_LT(loaded[0].lambda50[0], 0);

  store.remove_all();
  EXPECT_FALSE(fs::exists(dir));
}

TEST(CheckpointStore, MissingDirectoryIsEmptyResume) {
  const CheckpointStore store(scratch_dir("perigee_ckpt_missing"), "fp");
  EXPECT_TRUE(store.load_all().empty());
}

TEST(CheckpointStore, RefusesForeignFingerprint) {
  const std::string dir = scratch_dir("perigee_ckpt_foreign");
  const CheckpointStore writer(dir, "fp-one");
  writer.prepare();
  SlotCurves slot;
  slot.lambda = {1.0};
  slot.lambda50 = {2.0};
  ASSERT_TRUE(writer.save(slot));

  const CheckpointStore reader(dir, "fp-two");
  EXPECT_THROW(reader.load_all(), std::runtime_error);
  writer.remove_all();
}

TEST(SweepService, ResumeAfterInterruptIsByteIdentical) {
  const SweepSpec spec = service_spec();
  const SweepRunner runner(4);
  const std::string reference = json_bytes(spec, runner.run(spec));

  // Simulate a run killed halfway: compute all slots, then persist only the
  // first half — exactly the on-disk state an interrupted checkpointing run
  // leaves behind (write_file_atomic means no torn files).
  const std::vector<SlotCurves> slots = runner.run_slots(spec, SweepOptions{});
  ASSERT_EQ(slots.size(), 6u);
  const std::string dir = scratch_dir("perigee_service_resume");
  const CheckpointStore store(dir, grid_fingerprint(spec));
  store.prepare();
  for (std::size_t i = 0; i < slots.size() / 2; ++i) {
    ASSERT_TRUE(store.save(slots[i]));
  }

  SweepOptions options;
  options.checkpoint_dir = dir;
  options.resume = true;
  std::atomic<std::size_t> first_done{~std::size_t{0}};
  const SweepResult resumed =
      runner.run(spec, options, [&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 6u);
        std::size_t expected = ~std::size_t{0};
        first_done.compare_exchange_strong(expected, done);
      });
  // The resumed slots were loaded, not recomputed: progress starts at 3.
  EXPECT_EQ(first_done.load(), 3u);
  EXPECT_EQ(json_bytes(spec, resumed), reference);
  CheckpointStore(dir, "").remove_all();
}

TEST(SweepService, ResumeRefusesForeignCheckpoints) {
  SweepSpec other = service_spec();
  other.base.seed = 99;  // different grid, same cell/seed shape
  const std::string dir = scratch_dir("perigee_service_foreign");
  const CheckpointStore store(dir, grid_fingerprint(other));
  store.prepare();
  SlotCurves slot;
  slot.lambda = {1.0};
  slot.lambda50 = {1.0};
  ASSERT_TRUE(store.save(slot));

  SweepOptions options;
  options.checkpoint_dir = dir;
  options.resume = true;
  EXPECT_THROW(SweepRunner(2).run(service_spec(), options),
               std::runtime_error);
  store.remove_all();
}

TEST(SweepService, ShardMergeIsByteIdentical) {
  const SweepSpec spec = service_spec();
  const SweepRunner runner(4);
  const std::string reference = json_bytes(spec, runner.run(spec));
  const std::string fingerprint = grid_fingerprint(spec);

  constexpr int kShards = 3;
  std::vector<std::string> paths;
  std::size_t covered = 0;
  for (int i = 0; i < kShards; ++i) {
    SweepOptions options;
    options.shard_index = i;
    options.shard_count = kShards;
    ShardFile shard;
    shard.shard_index = i;
    shard.shard_count = kShards;
    shard.slots = runner.run_slots(spec, options);
    // Round-robin partition: shard i owns exactly the jobs j % k == i.
    for (const SlotCurves& slot : shard.slots) {
      const std::size_t j =
          slot.cell * static_cast<std::size_t>(spec.seeds) + slot.seed;
      EXPECT_EQ(j % kShards, static_cast<std::size_t>(i));
    }
    covered += shard.slots.size();
    const std::string path =
        ::testing::TempDir() + "perigee_service_shard" + std::to_string(i) +
        ".json";
    ASSERT_TRUE(write_shard_file(path, fingerprint, shard));
    paths.push_back(path);
  }
  EXPECT_EQ(covered, 6u);  // disjoint and complete

  const SweepResult merged = merge_shards(spec, paths);
  EXPECT_EQ(json_bytes(spec, merged), reference);
  for (const std::string& path : paths) fs::remove(path);
}

TEST(SweepService, MergeValidatesShardSets) {
  const SweepSpec spec = service_spec();
  const SweepRunner runner(4);
  const std::string fingerprint = grid_fingerprint(spec);

  std::vector<std::string> paths;
  for (int i = 0; i < 2; ++i) {
    SweepOptions options;
    options.shard_index = i;
    options.shard_count = 2;
    ShardFile shard;
    shard.shard_index = i;
    shard.shard_count = 2;
    shard.slots = runner.run_slots(spec, options);
    const std::string path = ::testing::TempDir() +
                             "perigee_service_merge_check" +
                             std::to_string(i) + ".json";
    ASSERT_TRUE(write_shard_file(path, fingerprint, shard));
    paths.push_back(path);
  }

  // Missing shard: one file of a k=2 split cannot cover the grid.
  EXPECT_THROW(merge_shards(spec, {paths[0]}), std::runtime_error);
  // Duplicate shard.
  EXPECT_THROW(merge_shards(spec, {paths[0], paths[0]}), std::runtime_error);
  // Foreign grid: the fingerprint embedded in the files does not match.
  SweepSpec other = spec;
  other.base.seed = 99;
  EXPECT_THROW(merge_shards(other, paths), std::runtime_error);
  // The honest merge still works.
  EXPECT_NO_THROW(merge_shards(spec, paths));
  for (const std::string& path : paths) fs::remove(path);
}

TEST(SweepService, BuildReuseIsByteIdentical) {
  // Policy-axis grid: all cells of one seed share a scenario build, so the
  // reuse path exercises build-once-clone-many; turning it off must not
  // change a single byte.
  SweepSpec spec = service_spec();
  spec.rounds = {1, 2};  // 6 cells x 2 seeds, still 2 builds
  const SweepRunner runner(4);

  SweepOptions with_reuse;
  with_reuse.reuse_builds = true;
  SweepOptions without_reuse;
  without_reuse.reuse_builds = false;
  const std::string a = json_bytes(spec, runner.run(spec, with_reuse));
  const std::string b = json_bytes(spec, runner.run(spec, without_reuse));
  EXPECT_EQ(a, b);
  // And both equal the plain batch entry point.
  EXPECT_EQ(a, json_bytes(spec, runner.run(spec)));
}

TEST(ProgressPrinter, ConcurrentReportsNeverInterleave) {
  // Regression: the sweep CLI used to write "\r N/total" to cerr straight
  // from worker threads; two workers finishing together interleaved partial
  // lines. The printer serializes and keeps the counter monotone.
  std::ostringstream os;
  ProgressPrinter printer(os, "jobs ");
  constexpr std::size_t kTotal = 400;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t done = next.fetch_add(1) + 1;
        if (done > kTotal) break;
        printer(done, kTotal);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  printer.finish();

  const std::string out = os.str();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  // Every carriage-return-delimited frame is exactly "jobs <m>/400", and
  // the displayed counter never moves backwards.
  std::size_t last = 0;
  std::size_t frames = 0;
  std::stringstream frame_stream(out.substr(0, out.size() - 1));
  std::string frame;
  while (std::getline(frame_stream, frame, '\r')) {
    if (frame.empty()) continue;  // leading '\r'
    ++frames;
    ASSERT_EQ(frame.rfind("jobs ", 0), 0u) << "corrupt frame: " << frame;
    const std::size_t slash = frame.find('/');
    ASSERT_NE(slash, std::string::npos) << "corrupt frame: " << frame;
    const std::size_t shown = std::stoul(frame.substr(5, slash - 5));
    EXPECT_EQ(frame.substr(slash + 1), std::to_string(kTotal));
    EXPECT_GE(shown, last) << "meter moved backwards";
    last = shown;
  }
  EXPECT_GT(frames, 0u);
  EXPECT_EQ(last, kTotal);  // the final report is the completion frame
}

TEST(ProgressPrinter, FinishIsIdempotentAndSilentWhenUnused) {
  std::ostringstream os;
  ProgressPrinter printer(os);
  printer.finish();
  EXPECT_TRUE(os.str().empty());
  printer(1, 2);
  printer.finish();
  printer.finish();
  EXPECT_EQ(os.str(), "\r1/2\n");
}

}  // namespace
}  // namespace perigee::runner
