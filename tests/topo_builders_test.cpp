#include "topo/builders.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

namespace perigee::topo {
namespace {

net::Network make_network(std::size_t n, std::uint64_t seed = 1) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  return net::Network::build(options);
}

// Connected-component size via BFS over the union adjacency.
std::size_t component_size(const net::Topology& t, net::NodeId start) {
  std::vector<bool> seen(t.size(), false);
  std::queue<net::NodeId> queue;
  queue.push(start);
  seen[start] = true;
  std::size_t count = 0;
  while (!queue.empty()) {
    const net::NodeId u = queue.front();
    queue.pop();
    ++count;
    for (const auto& link : t.adjacency(u)) {
      if (!seen[link.peer]) {
        seen[link.peer] = true;
        queue.push(link.peer);
      }
    }
  }
  return count;
}

TEST(RandomTopology, FillsOutgoingSlots) {
  net::Topology t(200);
  util::Rng rng(1);
  build_random(t, rng);
  t.validate();
  for (net::NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(t.out_count(v), t.limits().out_cap);
    EXPECT_LE(t.in_count(v), t.limits().in_cap);
  }
}

TEST(RandomTopology, IsConnectedAtBitcoinDegree) {
  // With dout=8 a 500-node random digraph is connected with overwhelming
  // probability.
  net::Topology t(500);
  util::Rng rng(2);
  build_random(t, rng);
  EXPECT_EQ(component_size(t, 0), 500u);
}

TEST(RandomTopology, DeterministicInRng) {
  net::Topology a(100), b(100);
  util::Rng ra(3), rb(3);
  build_random(a, ra);
  build_random(b, rb);
  EXPECT_EQ(a.p2p_edges(), b.p2p_edges());
}

TEST(DialRandomPeers, RespectsCount) {
  net::Topology t(50);
  util::Rng rng(4);
  EXPECT_EQ(dial_random_peers(t, 7, 3, rng), 3);
  EXPECT_EQ(t.out_count(7), 3);
  t.validate();
}

TEST(DialRandomPeers, GivesUpGracefully) {
  // 2 nodes: node 0 can only connect to node 1 once.
  net::Topology t(2);
  util::Rng rng(5);
  const int made = dial_random_peers(t, 0, 5, rng);
  EXPECT_EQ(made, 1);
  EXPECT_EQ(t.out_count(0), 1);
}

TEST(GeoClusters, PrefersLocalRegion) {
  const auto network = make_network(600, 7);
  net::Topology t(600);
  util::Rng rng(6);
  build_geo_clusters(t, network, rng, 0.5);
  t.validate();

  std::size_t local = 0, total = 0;
  for (const auto& [u, v] : t.p2p_edges()) {
    ++total;
    if (network.profile(u).region == network.profile(v).region) ++local;
  }
  // About half of the dials are local by construction; the random half also
  // lands locally sometimes, so expect well above the random baseline.
  const double frac = static_cast<double>(local) / static_cast<double>(total);
  EXPECT_GT(frac, 0.45);

  // Compare against a purely random topology: local fraction must be higher.
  net::Topology r(600);
  util::Rng rng2(6);
  build_random(r, rng2);
  std::size_t rlocal = 0, rtotal = 0;
  for (const auto& [u, v] : r.p2p_edges()) {
    ++rtotal;
    if (network.profile(u).region == network.profile(v).region) ++rlocal;
  }
  EXPECT_GT(frac, static_cast<double>(rlocal) / static_cast<double>(rtotal));
}

TEST(GeoClusters, FullLocalFractionStillFillsSlots) {
  const auto network = make_network(300, 8);
  net::Topology t(300);
  util::Rng rng(8);
  build_geo_clusters(t, network, rng, 1.0);
  t.validate();
  for (net::NodeId v = 0; v < t.size(); ++v) {
    // Small regions fall back to random dials, so slots still fill.
    EXPECT_GE(t.out_count(v), t.limits().out_cap - 1);
  }
}

TEST(Kademlia, FillsSlotsAndStaysValid) {
  net::Topology t(300);
  util::Rng rng(9);
  build_kademlia(t, rng);
  t.validate();
  std::size_t filled = 0;
  for (net::NodeId v = 0; v < t.size(); ++v) {
    if (t.out_count(v) == t.limits().out_cap) ++filled;
  }
  // Bucket exhaustion plus declines can leave a handful short.
  EXPECT_GT(filled, 290u);
}

TEST(Kademlia, IsConnected) {
  net::Topology t(400);
  util::Rng rng(10);
  build_kademlia(t, rng);
  EXPECT_EQ(component_size(t, 0), 400u);
}

TEST(GeometricThreshold, OnlyShortEdges) {
  const auto network = make_network(150, 11);
  net::Topology t(150, {.out_cap = 150, .in_cap = 150});
  build_geometric_threshold(t, network, 60.0);
  t.validate();
  for (const auto& [u, v] : t.p2p_edges()) {
    EXPECT_LT(network.link_ms(u, v), 60.0);
  }
}

TEST(GeometricThreshold, ThresholdMonotone) {
  const auto network = make_network(150, 12);
  net::Topology small(150, {.out_cap = 150, .in_cap = 150});
  net::Topology large(150, {.out_cap = 150, .in_cap = 150});
  build_geometric_threshold(small, network, 40.0);
  build_geometric_threshold(large, network, 80.0);
  EXPECT_LT(small.num_p2p_edges(), large.num_p2p_edges());
}

TEST(KNearest, PicksLatencyMinimalPeersModuloDeclines) {
  const auto network = make_network(120, 13);
  net::Topology t(120);
  util::Rng rng(13);
  build_k_nearest(t, network, rng);
  t.validate();
  // The aggregate outgoing latency must sit far below the network-wide
  // average: 6 of 8 dials per node are nearest-first (the other 2 are the
  // random long links that keep the overlay connected).
  double network_avg = 0;
  int count = 0;
  for (net::NodeId u = 0; u < 120; ++u) {
    for (net::NodeId v = u + 1; v < 120; ++v) {
      network_avg += network.link_ms(u, v);
      ++count;
    }
  }
  network_avg /= count;
  double out_avg = 0;
  int out_count = 0;
  for (net::NodeId v = 0; v < t.size(); ++v) {
    for (net::NodeId u : t.out(v)) {
      out_avg += network.link_ms(v, u);
      ++out_count;
    }
  }
  out_avg /= out_count;
  EXPECT_LT(out_avg, 0.6 * network_avg);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  net::Topology t(200, {.out_cap = 200, .in_cap = 200});
  util::Rng rng(14);
  build_erdos_renyi(t, 0.05, rng);
  t.validate();
  const double expected = 0.05 * 200.0 * 199.0 / 2.0;  // ~995
  const auto edges = static_cast<double>(t.num_p2p_edges());
  EXPECT_NEAR(edges, expected, 5 * std::sqrt(expected));
}

TEST(ErdosRenyi, ZeroAndFullProbability) {
  net::Topology none(20, {.out_cap = 20, .in_cap = 20});
  util::Rng rng(15);
  build_erdos_renyi(none, 0.0, rng);
  EXPECT_EQ(none.num_p2p_edges(), 0u);
  net::Topology full(20, {.out_cap = 20, .in_cap = 20});
  build_erdos_renyi(full, 1.0, rng);
  EXPECT_EQ(full.num_p2p_edges(), 190u);
}

}  // namespace
}  // namespace perigee::topo
