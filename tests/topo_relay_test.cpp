#include "topo/relay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>

namespace perigee::topo {
namespace {

net::Network make_network(std::size_t n) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = 17;
  return net::Network::build(options);
}

TEST(Relay, InstallsRequestedMembers) {
  auto network = make_network(300);
  net::Topology t(300);
  util::Rng rng(1);
  RelayConfig config;
  config.members = 50;
  const auto relay = install_relay_tree(t, network, config, rng);
  EXPECT_EQ(relay.members.size(), 50u);
  t.validate();

  // Exactly the members are flagged.
  std::size_t flagged = 0;
  for (net::NodeId v = 0; v < network.size(); ++v) {
    if (network.profile(v).relay) ++flagged;
  }
  EXPECT_EQ(flagged, 50u);
  for (net::NodeId v : relay.members) {
    EXPECT_TRUE(network.profile(v).relay);
  }
}

TEST(Relay, TreeHasMembersMinusOneEdges) {
  auto network = make_network(200);
  net::Topology t(200);
  util::Rng rng(2);
  RelayConfig config;
  config.members = 64;
  install_relay_tree(t, network, config, rng);
  EXPECT_EQ(t.infra_edges().size(), 63u);
  EXPECT_EQ(t.num_p2p_edges(), 0u);
}

TEST(Relay, TreeIsConnectedWithConfiguredLatency) {
  auto network = make_network(150);
  net::Topology t(150);
  util::Rng rng(3);
  RelayConfig config;
  config.members = 40;
  config.link_ms = 5.0;
  const auto relay = install_relay_tree(t, network, config, rng);

  // BFS over infra edges reaches all members.
  std::vector<bool> seen(t.size(), false);
  std::queue<net::NodeId> queue;
  queue.push(relay.members[0]);
  seen[relay.members[0]] = true;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const net::NodeId u = queue.front();
    queue.pop();
    ++reached;
    for (const auto& link : t.adjacency(u)) {
      ASSERT_TRUE(link.is_infra());
      EXPECT_DOUBLE_EQ(link.infra_ms, 5.0);
      if (!seen[link.peer]) {
        seen[link.peer] = true;
        queue.push(link.peer);
      }
    }
  }
  EXPECT_EQ(reached, 40u);
}

TEST(Relay, ScalesMemberValidation) {
  auto network = make_network(100);
  // Snapshot validation delays before installation.
  std::vector<double> before;
  for (net::NodeId v = 0; v < network.size(); ++v) {
    before.push_back(network.validation_ms(v));
  }
  net::Topology t(100);
  util::Rng rng(4);
  RelayConfig config;
  config.members = 25;
  config.validation_scale = 0.1;
  const auto relay = install_relay_tree(t, network, config, rng);
  for (net::NodeId v = 0; v < network.size(); ++v) {
    const bool member = std::find(relay.members.begin(), relay.members.end(),
                                  v) != relay.members.end();
    EXPECT_NEAR(network.validation_ms(v), member ? before[v] * 0.1 : before[v],
                1e-12);
  }
}

TEST(Relay, FanoutShapesDepth) {
  auto network = make_network(300);
  net::Topology binary_topo(300), wide_topo(300);
  util::Rng rng1(5), rng2(5);
  RelayConfig binary;
  binary.members = 100;
  binary.fanout = 2;
  RelayConfig wide = binary;
  wide.fanout = 8;
  const auto rb = install_relay_tree(binary_topo, network, binary, rng1);

  auto network2 = make_network(300);
  const auto rw = install_relay_tree(wide_topo, network2, wide, rng2);

  auto depth_from = [](const net::Topology& t, net::NodeId root) {
    std::vector<int> depth(t.size(), -1);
    std::queue<net::NodeId> queue;
    queue.push(root);
    depth[root] = 0;
    int max_depth = 0;
    while (!queue.empty()) {
      const net::NodeId u = queue.front();
      queue.pop();
      max_depth = std::max(max_depth, depth[u]);
      for (const auto& link : t.adjacency(u)) {
        if (depth[link.peer] < 0) {
          depth[link.peer] = depth[u] + 1;
          queue.push(link.peer);
        }
      }
    }
    return max_depth;
  };
  EXPECT_GT(depth_from(binary_topo, rb.members[0]),
            depth_from(wide_topo, rw.members[0]));
}

TEST(Relay, MembersCannotExceedNetwork) {
  auto network = make_network(10);
  net::Topology t(10);
  util::Rng rng(6);
  RelayConfig config;
  config.members = 10;  // == n is allowed
  const auto relay = install_relay_tree(t, network, config, rng);
  EXPECT_EQ(relay.members.size(), 10u);
}

}  // namespace
}  // namespace perigee::topo
