#include "topo/spanner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stretch.hpp"
#include "net/embedding.hpp"
#include "topo/builders.hpp"
#include "util/rng.hpp"

namespace perigee::topo {
namespace {

net::Network make_square(std::size_t n, std::uint64_t seed) {
  net::NetworkOptions options;
  options.n = n;
  options.seed = seed;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;
  return net::Network::build(options);
}

TEST(ConeSpanner, StretchBoundFormula) {
  // k = 8: 1/(1 - 2 sin(pi/8)) ~ 4.26; k = 12: ~ 2.07. Monotone decreasing.
  EXPECT_NEAR(cone_spanner_stretch_bound(8),
              1.0 / (1.0 - 2.0 * std::sin(std::numbers::pi / 8.0)), 1e-12);
  EXPECT_GT(cone_spanner_stretch_bound(8), cone_spanner_stretch_bound(12));
  EXPECT_GT(cone_spanner_stretch_bound(12), 1.0);
}

TEST(ConeSpanner, DegreeBoundedByCones) {
  const auto network = make_square(300, 3);
  net::Topology t(300, {.out_cap = 8, .in_cap = 300});
  build_cone_spanner(t, network, 8, ConeGraphKind::Yao);
  t.validate();
  for (net::NodeId v = 0; v < t.size(); ++v) {
    EXPECT_LE(t.out_count(v), 8);
    // A node may own zero *outgoing* edges when every cone-best peer dialed
    // it first (the reverse edge suppresses the duplicate), but the relay
    // adjacency is never empty.
    EXPECT_GE(t.adjacency(v).size(), 1u);
  }
}

TEST(ConeSpanner, YaoKeepsNearestPerCone) {
  // Hand geometry: node 0 at the center, two nodes in the same (east) cone
  // at distances 10 and 20, one node west. Yao must pick the near east node
  // and the west node.
  net::NetworkOptions options;
  options.n = 4;
  options.latency = net::NetworkOptions::LatencyKind::Euclidean;
  options.embed_dim = 2;
  options.embed_scale_ms = 1.0;
  auto network = net::Network::build(options);
  auto& profiles = network.mutable_profiles();
  profiles[0].coords = {0, 0, 0, 0, 0};
  profiles[1].coords = {10, 1, 0, 0, 0};   // east, near
  profiles[2].coords = {20, 2, 0, 0, 0};   // east, far (same cone for k=4)
  profiles[3].coords = {-15, 1, 0, 0, 0};  // west

  net::Topology t(4, {.out_cap = 4, .in_cap = 4});
  build_cone_spanner(t, network, 4, ConeGraphKind::Yao);
  EXPECT_TRUE(t.has_out(0, 1));
  EXPECT_FALSE(t.has_out(0, 2));
  EXPECT_TRUE(t.are_adjacent(0, 3));
}

TEST(ConeSpanner, EmpiricalStretchWithinTheBound) {
  const auto network = make_square(400, 4);
  for (const auto kind : {ConeGraphKind::Yao, ConeGraphKind::Theta}) {
    net::Topology t(400, {.out_cap = 8, .in_cap = 400});
    build_cone_spanner(t, network, 8, kind);
    util::Rng rng(4);
    const auto stats = metrics::measure_stretch(t, network, rng, 15, 0.05);
    EXPECT_GT(stats.pairs, 0u);
    EXPECT_EQ(stats.unreachable, 0u);  // cone graphs are connected
    EXPECT_LE(stats.max, cone_spanner_stretch_bound(8) + 1e-9);
    // In practice far below the worst case.
    EXPECT_LT(stats.p90, 1.5);
  }
}

TEST(ConeSpanner, StretchConstantAcrossSizes) {
  // Like the geometric graph (Theorem 2), cone spanners keep constant
  // stretch as n grows — with O(k n) edges instead of O(n log n).
  double prev_p50 = 0;
  for (std::size_t n : {200u, 800u}) {
    const auto network = make_square(n, 5);
    net::Topology t(n, {.out_cap = 8, .in_cap = static_cast<int>(n)});
    build_cone_spanner(t, network, 8, ConeGraphKind::Yao);
    util::Rng rng(5);
    const auto stats = metrics::measure_stretch(t, network, rng, 10, 0.05);
    EXPECT_LT(stats.p50, 1.25);
    if (prev_p50 > 0) { EXPECT_NEAR(stats.p50, prev_p50, 0.15); }
    prev_p50 = stats.p50;
  }
}

TEST(ConeSpanner, ThetaAndYaoDiffer) {
  const auto network = make_square(300, 6);
  net::Topology yao(300, {.out_cap = 8, .in_cap = 300});
  net::Topology theta(300, {.out_cap = 8, .in_cap = 300});
  build_cone_spanner(yao, network, 8, ConeGraphKind::Yao);
  build_cone_spanner(theta, network, 8, ConeGraphKind::Theta);
  EXPECT_NE(yao.p2p_edges(), theta.p2p_edges());
}

TEST(ConeSpanner, MoreConesLowerStretch) {
  const auto network = make_square(300, 7);
  double p90_8 = 0, p90_16 = 0;
  for (int cones : {8, 16}) {
    net::Topology t(300, {.out_cap = cones, .in_cap = 300});
    build_cone_spanner(t, network, cones, ConeGraphKind::Yao);
    util::Rng rng(7);
    const auto stats = metrics::measure_stretch(t, network, rng, 10, 0.05);
    (cones == 8 ? p90_8 : p90_16) = stats.p90;
  }
  EXPECT_LE(p90_16, p90_8 + 1e-9);
}

}  // namespace
}  // namespace perigee::topo
