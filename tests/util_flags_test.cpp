#include "util/flags.hpp"

#include <gtest/gtest.h>

namespace perigee::util {
namespace {

Flags make_flags() {
  Flags f;
  f.add_int("nodes", 1000, "network size");
  f.add_double("coverage", 0.9, "coverage");
  f.add_string("algo", "subset", "algorithm");
  f.add_bool("verbose", false, "verbosity");
  return f;
}

TEST(Flags, DefaultsWithoutArgs) {
  Flags f = make_flags();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(f.parse(1, argv));
  EXPECT_EQ(f.get_int("nodes"), 1000);
  EXPECT_DOUBLE_EQ(f.get_double("coverage"), 0.9);
  EXPECT_EQ(f.get_string("algo"), "subset");
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nodes=500", "--coverage=0.5",
                        "--algo=ucb"};
  ASSERT_TRUE(f.parse(4, argv));
  EXPECT_EQ(f.get_int("nodes"), 500);
  EXPECT_DOUBLE_EQ(f.get_double("coverage"), 0.5);
  EXPECT_EQ(f.get_string("algo"), "ucb");
}

TEST(Flags, SpaceSyntax) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nodes", "250"};
  ASSERT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.get_int("nodes"), 250);
}

TEST(Flags, BareBoolSetsTrue) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, BoolExplicitValue) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(f.parse(2, argv));
  EXPECT_FALSE(f.get_bool("verbose"));
}

TEST(Flags, UnknownFlagsCollected) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--benchmark_filter=all", "--nodes=9"};
  ASSERT_TRUE(f.parse(3, argv));
  EXPECT_EQ(f.get_int("nodes"), 9);
  ASSERT_EQ(f.unknown().size(), 1u);
  EXPECT_EQ(f.unknown()[0], "--benchmark_filter=all");
}

TEST(Flags, BadIntegerRejected) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nodes=abc"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, HelpReturnsFalse) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(f.parse(2, argv));
}

TEST(Flags, MissingValueAtEnd) {
  Flags f = make_flags();
  const char* argv[] = {"prog", "--nodes"};
  EXPECT_FALSE(f.parse(2, argv));
}

}  // namespace
}  // namespace perigee::util
