#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace perigee::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // Must not get stuck on a degenerate all-zero state.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 45u);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  Rng base(7);
  Rng s1 = base.split(1);
  Rng s2 = base.split(2);
  Rng s1_again = base.split(1);
  EXPECT_EQ(s1.next_u64(), s1_again.next_u64());
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng a(9), b(9);
  (void)a.split(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(5.0, 7.5);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Rng, UniformU64InclusiveBounds) {
  Rng r(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_u64(3, 6);
    EXPECT_GE(x, 3u);
    EXPECT_LE(x, 6u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformU64SingletonRange) {
  Rng r(7);
  EXPECT_EQ(r.uniform_u64(9, 9), 9u);
}

TEST(Rng, UniformU64IsUnbiased) {
  Rng r(8);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_u64(0, 4)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(2.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  Rng r(12);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.log_uniform(3.0, 186.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LE(x, 186.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(14);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto copy = v;
  r.shuffle(copy);
  EXPECT_NE(copy, v);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(15);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = r.sample_indices(20, 8);
    EXPECT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (auto idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleIndicesFullSet) {
  Rng r(16);
  auto sample = r.sample_indices(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(17);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(SplitMix, IsDeterministicAndMixes) {
  EXPECT_EQ(splitmix64(1), splitmix64(1));
  EXPECT_NE(splitmix64(1), splitmix64(2));
  // Single-bit input changes flip about half of output bits on average.
  int bits = std::popcount(splitmix64(0x1000) ^ splitmix64(0x1001));
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace perigee::util
