#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace perigee::util {
namespace {

TEST(Percentile, EmptySampleIsInfinite) {
  EXPECT_TRUE(std::isinf(percentile({}, 0.9)));
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v = {4.5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 4.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 4.5);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 4.5);
}

TEST(Percentile, MedianOfTwoInterpolates) {
  const std::vector<double> v = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 2.0);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, NinetiethOfTen) {
  // ranks 0..9; 0.9 * 9 = 8.1 -> between 9th and 10th order statistic.
  std::vector<double> v;
  for (int i = 1; i <= 10; ++i) v.push_back(i);
  EXPECT_NEAR(percentile(v, 0.9), 9.1, 1e-12);
}

TEST(Percentile, InfEntriesSortLast) {
  const std::vector<double> v = {1.0, 2.0, kInf, kInf};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_TRUE(std::isinf(percentile(v, 1.0)));
  // 0.5 -> rank 1.5, interpolates between 2.0 and inf -> dominated by inf.
  EXPECT_TRUE(std::isinf(percentile(v, 0.5)) ||
              percentile(v, 0.5) == 2.0);  // boundary handling
}

TEST(Percentile, AllInfIsInf) {
  const std::vector<double> v = {kInf, kInf};
  EXPECT_TRUE(std::isinf(percentile(v, 0.9)));
}

TEST(Percentile, MatchesNaiveOnRandomData) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> v;
    const int n = 1 + static_cast<int>(rng.uniform_index(200));
    for (int i = 0; i < n; ++i) v.push_back(rng.uniform(0, 100));
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      const double rank = q * (n - 1);
      const auto lo = static_cast<std::size_t>(rank);
      const auto hi = std::min<std::size_t>(lo + 1, sorted.size() - 1);
      const double expect =
          sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo);
      EXPECT_NEAR(percentile(v, q), expect, 1e-9);
    }
  }
}

TEST(MeanStddev, KnownValues) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  // Sample stddev with n-1 = 7: var = 32/7.
  EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MeanStddev, DegenerateSizes) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(OnlineStats, MatchesBatch) {
  Rng rng(99);
  std::vector<double> v;
  OnlineStats os;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 2);
    v.push_back(x);
    os.add(x);
  }
  EXPECT_EQ(os.count(), 1000u);
  EXPECT_NEAR(os.mean(), mean(v), 1e-9);
  EXPECT_NEAR(os.stddev(), stddev(v), 1e-9);
  EXPECT_DOUBLE_EQ(os.min(), *std::min_element(v.begin(), v.end()));
  EXPECT_DOUBLE_EQ(os.max(), *std::max_element(v.begin(), v.end()));
}

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats os;
  EXPECT_EQ(os.count(), 0u);
  EXPECT_DOUBLE_EQ(os.mean(), 0.0);
  EXPECT_DOUBLE_EQ(os.variance(), 0.0);
}

TEST(Summary, OrderedFields) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_LE(s.p10, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 9
  h.add(5.0);    // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.4);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 30.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 15.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 30.0);
}

TEST(Histogram, DetectsBimodality) {
  Histogram h(0.0, 100.0, 20);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) h.add(rng.normal(20, 4));
  for (int i = 0; i < 2000; ++i) h.add(rng.normal(75, 5));
  const auto modes = h.modes();
  EXPECT_GE(modes.size(), 2u);
  // One mode near bin 4 (=20ms), one near bin 15 (=75ms).
  bool low = false, high = false;
  for (auto m : modes) {
    if (m >= 2 && m <= 6) low = true;
    if (m >= 13 && m <= 17) high = true;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 10.0, 2);
  for (int i = 0; i < 10; ++i) h.add(2.0);
  const std::string out = h.render(10);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

}  // namespace
}  // namespace perigee::util
