#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/stats.hpp"

namespace perigee::util {
namespace {

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(10.0), "10.0");
}

TEST(Fmt, SpecialValues) {
  EXPECT_EQ(fmt(kInf), "inf");
  EXPECT_EQ(fmt(-kInf), "-inf");
  EXPECT_EQ(fmt(std::nan("")), "nan");
}

TEST(Table, AlignsColumns) {
  Table t({"a", "bbbb"});
  t.add_row({"1234", "x"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header and row are present.
  EXPECT_NE(out.find("bbbb"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
  // Separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, RowCount) {
  Table t({"c"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"v"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, RowWidthMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

TEST(Banner, Format) {
  std::ostringstream os;
  print_banner(os, "hello");
  EXPECT_EQ(os.str(), "\n== hello ==\n");
}

}  // namespace
}  // namespace perigee::util
